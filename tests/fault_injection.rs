//! Failure injection across the stack: corruption must surface as typed
//! errors, never as panics or silent wrong answers.

use rheo::bench::workload;
use rheo::core::session::Session;
use rheo::data::batch::batch_of;
use rheo::data::Column;
use rheo::fabric::flow::{FlowSim, PipelineSpec, StageSpec};
use rheo::fabric::topology::Topology;
use rheo::fabric::OpClass;
use rheo::storage::object::{MemObjectStore, ObjectStoreRef};
use rheo::storage::smart::{ScanRequest, SmartStorage};
use rheo::storage::table::TableStore;
use std::sync::Arc;

fn loaded_store() -> (ObjectStoreRef, TableStore) {
    let store: ObjectStoreRef = Arc::new(MemObjectStore::new());
    let tables = TableStore::new(store.clone());
    tables
        .create_and_load("t", &[workload::lineitem(5_000, 1)])
        .unwrap();
    (store, tables)
}

#[test]
fn corrupted_segment_block_is_detected_not_served() {
    let (store, tables) = loaded_store();
    let key = tables.segments("t")[0].clone();
    let mut bytes = store.get(&key).unwrap();
    // Flip a bit inside the first block (the body precedes the footer).
    bytes[100] ^= 0x40;
    store.put(&key, bytes).unwrap();
    let server = SmartStorage::new(tables);
    let result = server.scan("t", &ScanRequest::full());
    assert!(result.is_err(), "corrupted block served as data");
    let msg = format!("{}", result.unwrap_err());
    assert!(
        msg.contains("checksum"),
        "error should identify the checksum failure: {msg}"
    );
}

#[test]
fn corrupted_footer_fails_at_open() {
    let (store, tables) = loaded_store();
    let key = tables.segments("t")[0].clone();
    let mut bytes = store.get(&key).unwrap();
    let n = bytes.len();
    bytes[n - 6] ^= 0xff; // inside footer length / magic region
    store.put(&key, bytes).unwrap();
    let server = SmartStorage::new(tables);
    assert!(server.scan("t", &ScanRequest::full()).is_err());
}

#[test]
fn deleted_meta_is_an_unknown_table() {
    let (store, tables) = loaded_store();
    store.delete("t/_meta");
    let server = SmartStorage::new(tables);
    assert!(server.scan("t", &ScanRequest::full()).is_err());
}

#[test]
fn session_survives_a_bad_query_stream() {
    // Parse and plan errors must leave the session usable.
    let session = Session::in_memory().unwrap();
    session
        .create_table(
            "t",
            &[batch_of(vec![("x", Column::from_i64(vec![1, 2, 3]))])],
        )
        .unwrap();
    for bad in [
        "SELECT",
        "SELECT * FROM ghost",
        "SELECT y FROM t",
        "SELECT x FROM t WHERE x LIKE 1",
        "SELECT SUM(x) FROM t GROUP BY",
    ] {
        assert!(session.sql(bad).is_err(), "accepted: {bad}");
    }
    // Still healthy.
    let ok = session.sql("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(ok.batch.row(0)[0], rheo::data::Scalar::Int(3));
}

#[test]
fn zero_byte_pipeline_terminates() {
    let topo = Topology::disaggregated(&Default::default());
    let ssd = topo.expect_device("storage.ssd");
    let cpu = topo.expect_device("compute0.cpu");
    let spec = PipelineSpec::new(
        "empty",
        vec![
            StageSpec::new(ssd, OpClass::Scan, 1.0),
            StageSpec::new(cpu, OpClass::Count, 0.0),
        ],
        0,
    );
    let mut sim = FlowSim::new(topo);
    sim.add_pipeline(spec);
    let report = sim.run();
    assert_eq!(report.pipelines[0].bytes_delivered, 0);
    // The simulation drained (no stuck events).
    assert_eq!(report.makespan.nanos(), 0);
}

#[test]
fn cxl_rack_has_coherent_paths_but_no_storage() {
    use rheo::core::optimizer::SiteMap;
    let rack = Topology::cxl_rack(2, 2, 6);
    // Every socket reaches every pool coherently.
    for s in 0..2 {
        let cpu = rack.expect_device(&format!("socket{s}.cpu"));
        for p in 0..2 {
            let pool = rack.expect_device(&format!("pool{p}.mem"));
            let route = rack.route(cpu, pool).expect("connected");
            assert!(route.links.iter().all(|&l| rack.link(l).tech.coherent()));
        }
    }
    // A rack without storage cannot host the session's scan plans; the
    // optimizer reports that as a typed placement error, not a panic.
    let err = SiteMap::discover(&rack).unwrap_err();
    assert!(format!("{err}").contains("no storage device"), "{err}");
}

#[test]
fn wire_tamper_detected_between_nodes() {
    use rheo::codec::wire::{encode_batch, WireOptions};
    use rheo::net::transport::{FrameKind, Network};

    let batch = batch_of(vec![("x", Column::from_i64((0..100).collect()))]);
    let net = Network::new(2);
    let mut frame = encode_batch(&batch, &WireOptions::compressed());
    let mid = frame.len() / 2;
    frame[mid] ^= 0x08;
    net.send(0, 1, FrameKind::Data, frame).unwrap();
    assert!(net.recv_batch(1).is_err(), "tampered frame decoded");
}
