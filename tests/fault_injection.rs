//! Failure injection across the stack: corruption must surface as typed
//! errors, never as panics or silent wrong answers.

use rheo::bench::workload;
use rheo::core::session::Session;
use rheo::data::batch::batch_of;
use rheo::data::Column;
use rheo::fabric::flow::{FlowSim, PipelineSpec, StageSpec};
use rheo::fabric::topology::Topology;
use rheo::fabric::OpClass;
use rheo::storage::object::{MemObjectStore, ObjectStoreRef};
use rheo::storage::smart::{ScanRequest, SmartStorage};
use rheo::storage::table::TableStore;
use std::sync::Arc;

fn loaded_store() -> (ObjectStoreRef, TableStore) {
    let store: ObjectStoreRef = Arc::new(MemObjectStore::new());
    let tables = TableStore::new(store.clone());
    tables
        .create_and_load("t", &[workload::lineitem(5_000, 1)])
        .unwrap();
    (store, tables)
}

#[test]
fn corrupted_segment_block_is_detected_not_served() {
    let (store, tables) = loaded_store();
    let key = tables.segments("t")[0].clone();
    let mut bytes = store.get(&key).unwrap();
    // Flip a bit inside the first block (the body precedes the footer).
    bytes[100] ^= 0x40;
    store.put(&key, bytes).unwrap();
    let server = SmartStorage::new(tables);
    let result = server.scan("t", &ScanRequest::full());
    assert!(result.is_err(), "corrupted block served as data");
    let msg = format!("{}", result.unwrap_err());
    assert!(
        msg.contains("checksum"),
        "error should identify the checksum failure: {msg}"
    );
}

#[test]
fn corrupted_footer_fails_at_open() {
    let (store, tables) = loaded_store();
    let key = tables.segments("t")[0].clone();
    let mut bytes = store.get(&key).unwrap();
    let n = bytes.len();
    bytes[n - 6] ^= 0xff; // inside footer length / magic region
    store.put(&key, bytes).unwrap();
    let server = SmartStorage::new(tables);
    assert!(server.scan("t", &ScanRequest::full()).is_err());
}

#[test]
fn deleted_meta_is_an_unknown_table() {
    let (store, tables) = loaded_store();
    store.delete("t/_meta");
    let server = SmartStorage::new(tables);
    assert!(server.scan("t", &ScanRequest::full()).is_err());
}

#[test]
fn session_survives_a_bad_query_stream() {
    // Parse and plan errors must leave the session usable.
    let session = Session::in_memory().unwrap();
    session
        .create_table(
            "t",
            &[batch_of(vec![("x", Column::from_i64(vec![1, 2, 3]))])],
        )
        .unwrap();
    for bad in [
        "SELECT",
        "SELECT * FROM ghost",
        "SELECT y FROM t",
        "SELECT x FROM t WHERE x LIKE 1",
        "SELECT SUM(x) FROM t GROUP BY",
    ] {
        assert!(session.sql(bad).is_err(), "accepted: {bad}");
    }
    // Still healthy.
    let ok = session.sql("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(ok.batch.row(0)[0], rheo::data::Scalar::Int(3));
}

#[test]
fn zero_byte_pipeline_terminates() {
    let topo = Topology::disaggregated(&Default::default());
    let ssd = topo.expect_device("storage.ssd");
    let cpu = topo.expect_device("compute0.cpu");
    let spec = PipelineSpec::new(
        "empty",
        vec![
            StageSpec::new(ssd, OpClass::Scan, 1.0),
            StageSpec::new(cpu, OpClass::Count, 0.0),
        ],
        0,
    );
    let mut sim = FlowSim::new(topo);
    sim.add_pipeline(spec);
    let report = sim.run();
    assert_eq!(report.pipelines[0].bytes_delivered, 0);
    // The simulation drained (no stuck events).
    assert_eq!(report.makespan.nanos(), 0);
}

#[test]
fn cxl_rack_has_coherent_paths_but_no_storage() {
    use rheo::core::optimizer::SiteMap;
    let rack = Topology::cxl_rack(2, 2, 6);
    // Every socket reaches every pool coherently.
    for s in 0..2 {
        let cpu = rack.expect_device(&format!("socket{s}.cpu"));
        for p in 0..2 {
            let pool = rack.expect_device(&format!("pool{p}.mem"));
            let route = rack.route(cpu, pool).expect("connected");
            assert!(route.links.iter().all(|&l| rack.link(l).tech.coherent()));
        }
    }
    // A rack without storage cannot host the session's scan plans; the
    // optimizer reports that as a typed placement error, not a panic.
    let err = SiteMap::discover(&rack).unwrap_err();
    assert!(format!("{err}").contains("no storage device"), "{err}");
}

// ---------------------------------------------------------------- serving
// Faults against the multi-tenant serving layer: every exit path — client
// disconnect mid-stream, a plan that fails verification, an admission
// rejection — must leave the credit ledger balanced (granted == returned
// for every tenant once nothing is running).

mod serving {
    use rheo::core::session::Session;
    use rheo::data::batch::batch_of;
    use rheo::data::{Column, Scalar};
    use rheo::serve::dispatch::{CancelToken, QueryService, ServiceConfig};
    use rheo::serve::server::{serve, Client};
    use rheo::serve::tenant::TenantSpec;
    use rheo::serve::ServeError;
    use std::sync::Arc;

    fn service(rows: usize) -> Arc<QueryService> {
        let session = Session::in_memory().unwrap();
        session
            .create_table(
                "orders",
                &[batch_of(vec![
                    ("id", Column::from_i64((0..rows as i64).collect())),
                    (
                        "amount",
                        Column::from_f64((0..rows).map(|i| (i % 90) as f64).collect()),
                    ),
                ])],
            )
            .unwrap();
        Arc::new(QueryService::new(session, ServiceConfig::default()))
    }

    fn assert_balanced(svc: &QueryService) {
        svc.scheduler().with(|s| {
            assert!(
                s.ledger().check_balanced().is_ok(),
                "credit ledger unbalanced: {:?}",
                s.ledger().check_balanced()
            );
            assert_eq!(s.ledger().total_outstanding(), 0);
        });
    }

    #[test]
    fn client_disconnect_mid_stream_balances_ledger() {
        let svc = service(5_000);
        let handle = serve(svc.clone(), 0).unwrap();
        // Open a session, fire a query, and vanish without reading the
        // response. The server's reader thread trips the cancel token;
        // the gate aborts at a batch boundary; cleanup repays everything.
        {
            let client = Client::connect(handle.addr(), &TenantSpec::new("ghost", 1)).unwrap();
            // Drop without reading a single Batch frame.
            drop(client);
        }
        // A second client disconnects *after* the query started streaming.
        {
            use rheo::serve::protocol::{read_frame, write_frame, Frame};
            let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
            let mut w = stream.try_clone().unwrap();
            let mut r = std::io::BufReader::new(stream);
            write_frame(
                &mut w,
                &Frame::Hello {
                    tenant: "flaky".into(),
                    weight: 1,
                    priority: 0,
                },
            )
            .unwrap();
            assert!(matches!(read_frame(&mut r).unwrap(), Frame::HelloOk));
            write_frame(
                &mut w,
                &Frame::Query {
                    sql: "SELECT id FROM orders".into(),
                },
            )
            .unwrap();
            // Read exactly one streamed batch frame, then slam the door.
            assert!(matches!(read_frame(&mut r).unwrap(), Frame::Batch(_)));
        }
        // Give the server threads a moment to unwind, then check
        // conservation. A healthy query afterwards proves the service
        // survived both disconnects.
        let t = svc.register_tenant(TenantSpec::new("prober", 1));
        let out = svc
            .run_sql(t, "SELECT COUNT(*) AS n FROM orders", CancelToken::new())
            .unwrap();
        assert_eq!(out.result.batch.row(0)[0], Scalar::Int(5_000));
        for _ in 0..50 {
            let drained = svc
                .scheduler()
                .with(|s| s.ledger().total_outstanding() == 0);
            if drained {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        assert_balanced(&svc);
        handle.shutdown();
    }

    #[test]
    fn cancelled_query_mid_execution_balances_ledger() {
        let svc = service(5_000);
        let t = svc.register_tenant(TenantSpec::new("impatient", 1));
        // Cancel from another thread while the query is executing; the
        // gate observes the token at a batch boundary.
        let cancel = CancelToken::new();
        let trip = cancel.clone();
        let flipper = std::thread::spawn(move || trip.cancel());
        let result = svc.run_sql(
            t,
            "SELECT COUNT(*) AS n FROM orders WHERE amount > 1.0",
            cancel,
        );
        flipper.join().unwrap();
        // Either the cancel landed in time (error) or the query beat it
        // (success); both must conserve credits.
        if let Err(e) = &result {
            assert!(
                matches!(e, ServeError::Engine(_) | ServeError::Disconnected),
                "unexpected error class: {e}"
            );
        }
        assert_balanced(&svc);
    }

    #[test]
    fn verify_failing_plan_never_executes_and_balances_ledger() {
        use rheo::core::physical::{PhysNode, PhysicalPlan};
        use rheo::core::pipeline::{PipelineGraph, DEFAULT_QUEUE_CAPACITY};
        use rheo::fabric::device::DeviceId;

        let svc = service(100);
        // A plan placed on a device id that does not exist in the topology
        // fails graph verification. Build it directly (the planner would
        // never emit it) and check the serving layer's gate.
        let bogus = DeviceId(u32::MAX - 1);
        let batch = batch_of(vec![("x", Column::from_i64(vec![1, 2, 3]))]);
        let plan = PhysicalPlan::new(
            PhysNode::Filter {
                input: Box::new(PhysNode::Values {
                    schema: batch.schema().clone(),
                    batches: vec![batch],
                    device: Some(bogus),
                }),
                predicate: rheo::core::expr::col("x").lt(rheo::core::expr::lit(2)),
                device: Some(bogus),
                use_kernel: false,
            },
            "bogus-placement",
        );
        let graph = PipelineGraph::compile(&plan, None, None, DEFAULT_QUEUE_CAPACITY);
        let verdict = graph.verify_or_err(Some(svc.session().topology()));
        assert!(
            verdict.is_err(),
            "a plan placed on a nonexistent device must fail verification"
        );
        // The serving layer rejects it before any credit is granted.
        assert_balanced(&svc);
        svc.scheduler().with(|s| {
            assert_eq!(
                s.ledger().granted("nobody"),
                0,
                "no tenant may be charged for a rejected plan"
            );
        });
    }

    #[test]
    fn admission_rejected_query_balances_ledger() {
        use rheo::fabric::flow::{PipelineSpec, StageSpec};
        use rheo::fabric::OpClass;
        use rheo::serve::admission::{AdmissionController, Verdict};
        use rheo::sim::SimDuration;

        let svc = service(100);
        let topo = svc.session().topology().clone();
        let ssd = topo.expect_device("storage.ssd");
        let cpu = topo.expect_device("compute0.cpu");
        // A tiny capacity window makes any real scan oversized.
        let mut ac = AdmissionController::with_window(topo, SimDuration::from_secs_f64(1e-9), 4);
        let spec = PipelineSpec::new(
            "hog",
            vec![
                StageSpec::new(ssd, OpClass::Scan, 1.0),
                StageSpec::new(cpu, OpClass::AggregateFinal, 0.1),
            ],
            1 << 30,
        )
        .for_tenant("hog");
        let demand = ac.demand_of(std::slice::from_ref(&spec)).unwrap();
        assert!(
            matches!(ac.offer(demand), Verdict::Rejected(_)),
            "a 1 GiB scan cannot fit a nanosecond window"
        );
        // Rejection happens before scheduling: nothing was ever granted,
        // and the ledger stays balanced.
        svc.scheduler().with(|s| {
            assert_eq!(s.ledger().granted("hog"), 0);
        });
        assert_balanced(&svc);
    }
}

#[test]
fn wire_tamper_detected_between_nodes() {
    use rheo::codec::wire::{encode_batch, WireOptions};
    use rheo::net::transport::{FrameKind, Network};

    let batch = batch_of(vec![("x", Column::from_i64((0..100).collect()))]);
    let net = Network::new(2);
    let mut frame = encode_batch(&batch, &WireOptions::compressed());
    let mid = frame.len() / 2;
    frame[mid] ^= 0x08;
    net.send(0, 1, FrameKind::Data, frame).unwrap();
    assert!(net.recv_batch(1).is_err(), "tampered frame decoded");
}

// -------------------------------------------------------------- streaming
// Faults against continuous queries: a stalled source, a fabric-edge
// consumer that disconnects mid-window, and a client cancel while windows
// are still open. Every exit must be a typed error (or a bit-identical
// completion), the executor's scoped threads must join — `execute`
// returning at all proves the shutdown — and the credit ledger must end
// balanced with nothing outstanding.

mod streaming_faults {
    use rheo::core::error::Result as CoreResult;
    use rheo::core::exec::push::{execute, ExecEnv, ExecGate, ExecOutcome};
    use rheo::core::logical::{AggCall, AggFn};
    use rheo::core::physical::PhysicalPlan;
    use rheo::core::streaming::{windowed_stream_plan, StreamSourceSpec, WindowSpec};
    use rheo::fabric::topology::DisaggregatedConfig;
    use rheo::fabric::Topology;
    use rheo::serve::dispatch::{CancelToken, QueryGate, SchedulerHandle};
    use rheo::serve::sched::FairScheduler;
    use rheo::serve::tenant::TenantSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// An 8-batch windowed continuous query; `fabric` places source and
    /// partial aggregation on the NIC so the partial->merge hop crosses a
    /// real fabric edge.
    fn stream_plan(topo: &Topology, fabric: bool) -> PhysicalPlan {
        let devices = if fabric {
            let nic = topo.expect_device("compute0.nic");
            let cpu = topo.expect_device("compute0.cpu");
            (Some(nic), Some(nic), Some(cpu))
        } else {
            (None, None, None)
        };
        windowed_stream_plan(
            &StreamSourceSpec {
                batches: Some(8),
                ..StreamSourceSpec::default()
            },
            WindowSpec::tumbling(256),
            vec!["sensor".into()],
            vec![
                AggCall::count_star("n"),
                AggCall::new(AggFn::Sum, "value", "total"),
            ],
            64,
            devices.0,
            devices.1,
            devices.2,
        )
        .expect("stream plan")
    }

    /// Rows + frontier history + window-close lags of one run.
    type RunFingerprint = (Vec<String>, Vec<(usize, Vec<i64>)>, Vec<i64>);

    fn fingerprint(out: &ExecOutcome) -> RunFingerprint {
        let rows = out
            .batches
            .iter()
            .flat_map(|b| (0..b.rows()).map(|r| format!("{:?}", b.row(r))))
            .collect();
        (rows, out.frontiers.clone(), out.window_lags.clone())
    }

    /// A scheduler + registered tenant + per-query gate, mirroring what
    /// `QueryService::run_sql` builds for SQL plans (streaming plans have
    /// no SQL surface, so the tests assemble the gate directly).
    fn gated(
        cancel: CancelToken,
    ) -> (Arc<SchedulerHandle>, rheo::serve::sched::QueryId, QueryGate) {
        let sched = SchedulerHandle::new(FairScheduler::new(8, 2));
        let tenant = sched.with(|s| s.register_tenant(TenantSpec::new("stream", 1)));
        let query = sched.with(|s| s.begin_query(tenant));
        let gate = QueryGate::new(sched.clone(), query, cancel);
        (sched, query, gate)
    }

    fn assert_sched_balanced(sched: &SchedulerHandle) {
        sched.with(|s| {
            if let Err(unbalanced) = s.ledger().check_balanced() {
                panic!("credit ledger unbalanced after fault: {unbalanced:?}");
            }
            assert_eq!(
                s.ledger().total_outstanding(),
                0,
                "credits still outstanding after shutdown"
            );
        });
    }

    /// Trips the query's cancel token once `after` batch boundaries have
    /// passed, then delegates to the real [`QueryGate`] — which observes
    /// the cancellation at the *next* boundary, exactly like a client
    /// disconnect landing mid-stream.
    struct CancelAfter {
        inner: QueryGate,
        cancel: CancelToken,
        seen: AtomicUsize,
        after: usize,
    }

    impl ExecGate for CancelAfter {
        fn acquire(&self, pipeline: usize) -> CoreResult<()> {
            if self.seen.fetch_add(1, Ordering::SeqCst) >= self.after {
                self.cancel.cancel();
            }
            self.inner.acquire(pipeline)
        }
    }

    /// Lets every batch through but stalls the source for a while on two
    /// of the boundaries — a slow upstream feed, not a failure.
    struct StallGate {
        seen: AtomicUsize,
    }

    impl ExecGate for StallGate {
        fn acquire(&self, _pipeline: usize) -> CoreResult<()> {
            let n = self.seen.fetch_add(1, Ordering::SeqCst);
            if n == 2 || n == 5 {
                thread::sleep(Duration::from_millis(25));
            }
            Ok(())
        }
    }

    #[test]
    fn stalled_source_completes_bit_identical_to_unstalled_run() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let plan = stream_plan(&topo, false);
        let baseline = execute(&plan, &ExecEnv::in_memory()).expect("baseline run");

        let env = ExecEnv {
            gate: Some(Arc::new(StallGate {
                seen: AtomicUsize::new(0),
            })),
            ..ExecEnv::in_memory()
        };
        let stalled = execute(&plan, &env).expect("stalled run must still finish");
        // A stall delays punctuation, it must never change it: same rows,
        // same frontier history, same window-close lags.
        assert_eq!(fingerprint(&stalled), fingerprint(&baseline));
    }

    #[test]
    fn cancel_during_open_window_is_a_typed_error_and_balances_ledger() {
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let plan = stream_plan(&topo, false);

        // The tumbling window (size 256) spans the whole 8-batch stream,
        // so after 3 of 8 batch boundaries every window is still open.
        let cancel = CancelToken::new();
        let (sched, query, gate) = gated(cancel.clone());
        let env = ExecEnv {
            gate: Some(Arc::new(CancelAfter {
                inner: gate,
                cancel,
                seen: AtomicUsize::new(0),
                after: 3,
            })),
            ..ExecEnv::in_memory()
        };
        let err = execute(&plan, &env).expect_err("cancelled query must not complete");
        assert!(
            format!("{err}").contains("cancelled"),
            "cancel must surface as the typed cancellation error: {err}"
        );

        // Unconditional cleanup, as run_sql does it — then conservation.
        sched.with(|s| s.finish_query(query));
        assert_sched_balanced(&sched);

        // Clean shutdown leaves no residue: the same plan re-runs and is
        // bit-identical to a fresh ungated run.
        let rerun = execute(&plan, &ExecEnv::in_memory()).expect("rerun after cancel");
        let fresh = execute(&plan, &ExecEnv::in_memory()).expect("fresh run");
        assert_eq!(fingerprint(&rerun), fingerprint(&fresh));
    }

    #[test]
    fn mid_window_disconnect_on_fabric_edge_shuts_down_cleanly() {
        // NIC-placed source and partial window aggregation: the abort has
        // to propagate across a live fabric edge (in-flight batches and
        // punctuation markers) and both endpoint threads must still join.
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let plan = stream_plan(&topo, true);
        let env_for = |gate| ExecEnv {
            topology: Some(&topo),
            gate,
            ..ExecEnv::in_memory()
        };

        let cancel = CancelToken::new();
        let (sched, query, gate) = gated(cancel.clone());
        let err = execute(
            &plan,
            &env_for(Some(Arc::new(CancelAfter {
                inner: gate,
                cancel,
                seen: AtomicUsize::new(0),
                after: 2,
            }) as Arc<dyn ExecGate>)),
        )
        .expect_err("disconnected stream must abort");
        assert!(format!("{err}").contains("cancelled"), "{err}");
        sched.with(|s| s.finish_query(query));
        assert_sched_balanced(&sched);

        // The fabric is reusable afterwards: a healthy gated run over the
        // same edge completes and matches the ungated baseline.
        let cancel = CancelToken::new();
        let (sched, query, gate) = gated(cancel);
        let gated_run = execute(&plan, &env_for(Some(Arc::new(gate) as Arc<dyn ExecGate>)))
            .expect("healthy gated run");
        sched.with(|s| s.finish_query(query));
        assert_sched_balanced(&sched);
        let baseline = execute(&plan, &env_for(None)).expect("ungated baseline");
        assert_eq!(fingerprint(&gated_run), fingerprint(&baseline));
    }
}
