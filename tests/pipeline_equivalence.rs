//! Property suite for the pipeline-graph refactor: driving execution
//! through the compiled [`PipelineGraph`] must be *bit-identical* to the
//! seed executors' semantics — same output batches in the same order with
//! the same batch boundaries, the same movement-ledger totals per device
//! edge, and the same storage-scan statistics.
//!
//! The oracle below is a frozen, direct reimplementation of the seed push
//! executor's contract: materialize each child, stream every batch through
//! the operator, and charge the ledger once per batch at each placement
//! handoff (`child device → node device`, plus `root device → consumer`).

use rheo::check::{check, Gen};
use rheo::core::exec::parallel::execute_parallel;
use rheo::core::exec::push::{execute, CodecPolicy, ExecEnv};
use rheo::core::exec::MovementLedger;
use rheo::core::expr::{col, lit};
use rheo::core::logical::{AggCall, AggFn, JoinType};
use rheo::core::ops::{
    AggMode, FilterOp, HashAggOp, HashJoinOp, LimitOp, Operator, ProjectOp, SortOp, TopKOp,
};
use rheo::core::physical::{PhysNode, PhysicalPlan};
use rheo::data::batch::batch_of;
use rheo::data::{Batch, Column, DataType, Field, Schema, SchemaRef};
use rheo::fabric::topology::DisaggregatedConfig;
use rheo::fabric::{DeviceId, Topology};
use rheo::storage::object::MemObjectStore;
use rheo::storage::predicate::StoragePredicate;
use rheo::storage::smart::{ScanRequest, ScanStats, SmartStorage};
use rheo::storage::table::TableStore;
use rheo::storage::zonemap::CmpOp;

// ---------------------------------------------------------------- oracle

/// Recursively evaluate a plan the way the seed push executor did,
/// returning the output batches of `node` (with seed batch boundaries)
/// and charging `ledger`/`stats` along the way.
fn oracle_eval(
    node: &PhysNode,
    storage: Option<&SmartStorage>,
    ledger: &mut MovementLedger,
    stats: &mut Vec<ScanStats>,
) -> Vec<Batch> {
    // Charge one batch crossing from `from` into `to`.
    fn charge(
        ledger: &mut MovementLedger,
        from: Option<DeviceId>,
        to: Option<DeviceId>,
        b: &Batch,
    ) {
        ledger.charge(from, to, b.byte_size() as u64, b.rows() as u64);
    }

    match node {
        PhysNode::Values { batches, .. } => batches.clone(),
        PhysNode::StorageScan { table, request, .. } => {
            let storage = storage.expect("plan has StorageScan but oracle has no storage");
            let (batches, scan) = storage.scan(table, request).expect("oracle scan");
            stats.push(scan);
            batches
        }
        PhysNode::HashJoin {
            build,
            probe,
            on,
            join_type,
            schema,
            device,
        } => {
            let mut op =
                HashJoinOp::with_type(on.clone(), *join_type, build.schema(), schema.clone());
            let build_dev = build.device();
            for b in oracle_eval(build, storage, ledger, stats) {
                charge(ledger, build_dev, *device, &b);
                op.build(b).expect("oracle join build");
            }
            let probe_dev = probe.device();
            let mut out = Vec::new();
            for b in oracle_eval(probe, storage, ledger, stats) {
                charge(ledger, probe_dev, *device, &b);
                out.extend(op.push(b).expect("oracle join probe"));
            }
            out.extend(op.finish().expect("oracle join finish"));
            out
        }
        unary => {
            let input = unary.children()[0];
            let in_batches = oracle_eval(input, storage, ledger, stats);
            let mut op: Box<dyn Operator> = match unary {
                PhysNode::Filter {
                    predicate,
                    use_kernel,
                    ..
                } => {
                    assert!(!use_kernel, "property plans stay on the host path");
                    Box::new(FilterOp::host(predicate.clone(), input.schema()))
                }
                PhysNode::Project { exprs, schema, .. } => {
                    Box::new(ProjectOp::new(exprs.clone(), schema.clone()))
                }
                PhysNode::Aggregate {
                    group_by,
                    aggs,
                    mode,
                    final_schema,
                    ..
                } => Box::new(
                    HashAggOp::new(
                        group_by.clone(),
                        aggs.clone(),
                        *mode,
                        &input.schema(),
                        final_schema.clone(),
                    )
                    .expect("oracle agg"),
                ),
                PhysNode::Sort { keys, .. } => Box::new(SortOp::new(keys.clone(), input.schema())),
                PhysNode::TopK { keys, k, .. } => {
                    Box::new(TopKOp::new(keys.clone(), *k, input.schema()))
                }
                PhysNode::Limit { n, .. } => Box::new(LimitOp::new(*n, input.schema())),
                _ => unreachable!("leaves and joins handled above"),
            };
            let (from, to) = (input.device(), unary.device());
            let mut out = Vec::new();
            for b in in_batches {
                charge(ledger, from, to, &b);
                out.extend(op.push(b).expect("oracle push"));
            }
            out.extend(op.finish().expect("oracle finish"));
            out
        }
    }
}

/// Full oracle run: batches + ledger (including the final hop to the
/// consumer) + scan stats.
fn oracle(
    plan: &PhysicalPlan,
    storage: Option<&SmartStorage>,
) -> (Vec<Batch>, MovementLedger, Vec<ScanStats>) {
    let mut ledger = MovementLedger::new();
    let mut stats = Vec::new();
    let batches = oracle_eval(&plan.root, storage, &mut ledger, &mut stats);
    for b in &batches {
        ledger.charge(
            plan.root.device(),
            None,
            b.byte_size() as u64,
            b.rows() as u64,
        );
    }
    (batches, ledger, stats)
}

// ----------------------------------------------------------- comparisons

fn ledger_edges(ledger: &MovementLedger) -> Vec<(DeviceId, DeviceId, u64, u64, u64)> {
    ledger
        .edges()
        .map(|(&(f, t), s)| (f, t, s.bytes, s.batches, s.rows))
        .collect()
}

fn assert_equivalent(
    got: &rheo::core::exec::ExecOutcome,
    want_batches: &[Batch],
    want_ledger: &MovementLedger,
    want_stats: &[ScanStats],
) {
    // Bit-identical streams: same batches, same order, same boundaries.
    assert_eq!(
        format!("{:?}", got.batches),
        format!("{want_batches:?}"),
        "output batches diverge from the seed semantics"
    );
    assert_eq!(
        ledger_edges(&got.ledger),
        ledger_edges(want_ledger),
        "cross-device ledger edges diverge"
    );
    assert_eq!(got.ledger.local_bytes(), want_ledger.local_bytes());
    assert_eq!(
        got.ledger.cross_device_bytes(),
        want_ledger.cross_device_bytes()
    );
    assert_eq!(got.scan_stats, want_stats, "scan stats diverge");
}

// ------------------------------------------------------- plan generation

struct PlanGen {
    devices: Vec<Option<DeviceId>>,
}

impl PlanGen {
    fn new(topo: &Topology) -> PlanGen {
        PlanGen {
            devices: vec![
                None,
                Some(topo.expect_device("compute0.cpu")),
                Some(topo.expect_device("compute0.nic")),
                Some(topo.expect_device("storage.ssd")),
            ],
        }
    }

    fn device(&self, gen: &mut Gen) -> Option<DeviceId> {
        *gen.pick(&self.devices)
    }

    /// Placement for stateful ops (breakers, joins): only unplaced or the
    /// CPU. Streaming devices cannot host unbounded state, and the graph
    /// verifier now rejects such placements before execution.
    fn stateful_device(&self, gen: &mut Gen) -> Option<DeviceId> {
        *gen.pick(&self.devices[..2])
    }

    fn base_schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
            Field::new("g", DataType::Int64),
        ])
        .into_ref()
    }

    /// Random rows split into random batch boundaries (possibly none).
    fn values(&self, gen: &mut Gen) -> PhysNode {
        let rows = gen.usize_in(0, 40);
        let mut ids = Vec::with_capacity(rows);
        let mut vs = Vec::with_capacity(rows);
        let mut gs = Vec::with_capacity(rows);
        for _ in 0..rows {
            ids.push(gen.i64_in(-20, 100));
            vs.push(gen.i64_in(-1_000, 1_000));
            gs.push(gen.i64_in(0, 4));
        }
        let mut batches = Vec::new();
        let mut at = 0usize;
        while at < rows {
            let len = gen.usize_in(1, 7).min(rows - at);
            batches.push(batch_of(vec![
                ("id", Column::from_i64(ids[at..at + len].to_vec())),
                ("v", Column::from_i64(vs[at..at + len].to_vec())),
                ("g", Column::from_i64(gs[at..at + len].to_vec())),
            ]));
            at += len;
        }
        PhysNode::Values {
            batches,
            schema: Self::base_schema(),
            device: self.device(gen),
        }
    }

    /// A chain of 0..=3 filters/identity-projects over the base columns.
    fn chain(&self, gen: &mut Gen, mut node: PhysNode) -> PhysNode {
        for _ in 0..gen.usize_in(0, 3) {
            node = if gen.bool() {
                PhysNode::Filter {
                    input: Box::new(node),
                    predicate: col("id").lt(lit(gen.i64_in(-10, 90))),
                    device: self.device(gen),
                    use_kernel: false,
                }
            } else {
                PhysNode::Project {
                    exprs: vec![
                        (col("id"), "id".to_string()),
                        (col("v"), "v".to_string()),
                        (col("g"), "g".to_string()),
                    ],
                    schema: Self::base_schema(),
                    input: Box::new(node),
                    device: self.device(gen),
                }
            };
        }
        node
    }

    fn final_agg(&self, gen: &mut Gen, node: PhysNode) -> PhysNode {
        let final_schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("n", DataType::Int64),
            Field::new("s", DataType::Int64),
        ])
        .into_ref();
        PhysNode::Aggregate {
            input: Box::new(node),
            group_by: vec!["g".into()],
            aggs: vec![AggCall::count_star("n"), AggCall::new(AggFn::Sum, "v", "s")],
            mode: AggMode::Final,
            final_schema,
            device: self.stateful_device(gen),
        }
    }

    /// Optional breaker / trailer on top of a chain.
    fn terminal(&self, gen: &mut Gen, node: PhysNode) -> PhysNode {
        let node = match gen.usize_in(0, 3) {
            0 => node,
            1 => self.final_agg(gen, node),
            2 => PhysNode::Sort {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                device: self.stateful_device(gen),
            },
            _ => PhysNode::TopK {
                input: Box::new(node),
                keys: vec![("id".into(), gen.bool()), ("v".into(), true)],
                k: gen.usize_in(0, 12) as u64,
                device: self.stateful_device(gen),
            },
        };
        if gen.bool() {
            PhysNode::Limit {
                input: Box::new(node),
                n: gen.usize_in(0, 15) as u64,
            }
        } else {
            node
        }
    }

    /// A small build side with column names disjoint from the base schema.
    fn build_side(&self, gen: &mut Gen) -> PhysNode {
        let rows = gen.usize_in(0, 8);
        let mut bks = Vec::with_capacity(rows);
        let mut bvs = Vec::with_capacity(rows);
        for _ in 0..rows {
            bks.push(gen.i64_in(-20, 100));
            bvs.push(gen.i64_in(0, 9));
        }
        let batches = if rows == 0 {
            vec![]
        } else {
            vec![batch_of(vec![
                ("bk", Column::from_i64(bks)),
                ("bv", Column::from_i64(bvs)),
            ])]
        };
        PhysNode::Values {
            batches,
            schema: Schema::new(vec![
                Field::new("bk", DataType::Int64),
                Field::new("bv", DataType::Int64),
            ])
            .into_ref(),
            device: self.device(gen),
        }
    }

    fn join(&self, gen: &mut Gen, probe: PhysNode) -> PhysNode {
        let build = self.build_side(gen);
        let mut fields: Vec<Field> = build.schema().fields().to_vec();
        fields.extend(probe.schema().fields().to_vec());
        PhysNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(probe),
            on: vec![("bk".into(), "id".into())],
            join_type: JoinType::Inner,
            schema: Schema::new(fields).into_ref(),
            device: self.stateful_device(gen),
        }
    }

    fn plan(&self, gen: &mut Gen) -> PhysicalPlan {
        let source = self.values(gen);
        let mut node = self.chain(gen, source);
        if gen.usize_in(0, 3) == 0 {
            node = self.join(gen, node);
            node = self.chain(gen, node);
        }
        node = self.terminal(gen, node);
        PhysicalPlan::new(node, "prop")
    }
}

// ------------------------------------------------------------ properties

#[test]
fn graph_push_matches_seed_semantics_on_random_plans() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = PlanGen::new(&topo);
    check("pipeline-graph-push-equivalence", 96, |gen: &mut Gen| {
        let plan = gens.plan(gen);
        let env = ExecEnv {
            storage: None,
            topology: Some(&topo),
            wire: None,
            tracer: None,
            gate: None,
            codec: CodecPolicy::AsCompiled,
        };
        let got = execute(&plan, &env).expect("graph-driven execution");
        let (batches, ledger, stats) = oracle(&plan, None);
        assert_equivalent(&got, &batches, &ledger, &stats);
    });
}

#[test]
fn graph_parallel_matches_push_rows_on_supported_shapes() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let gens = PlanGen::new(&topo);
    check(
        "pipeline-graph-parallel-equivalence",
        48,
        |gen: &mut Gen| {
            // Only shapes the morsel driver accepts: (filter|project)* agg? limit?
            let source = gens.values(gen);
            let mut node = gens.chain(gen, source);
            if gen.bool() {
                node = gens.final_agg(gen, node);
            }
            if gen.bool() {
                node = PhysNode::Limit {
                    input: Box::new(node),
                    n: gen.usize_in(0, 15) as u64,
                };
            }
            let leaf_device = {
                let mut leaf = &node;
                while let Some(child) = leaf.children().first() {
                    leaf = child;
                }
                leaf.device()
            };
            let plan = PhysicalPlan::new(node, "prop-parallel");
            let env = ExecEnv {
                storage: None,
                topology: Some(&topo),
                wire: None,
                tracer: None,
                gate: None,
                codec: CodecPolicy::AsCompiled,
            };
            let sequential = execute(&plan, &env).expect("push execution");
            let threads = gen.usize_in(1, 4);
            let parallel = execute_parallel(&plan, &env, threads).expect("parallel execution");
            let rows = |batches: &[Batch]| -> Vec<Vec<rheo::data::Scalar>> {
                if batches.is_empty() {
                    return Vec::new();
                }
                Batch::concat(batches).expect("concat").canonical_rows()
            };
            assert_eq!(
                rows(&parallel.batches),
                rows(&sequential.batches),
                "parallel rows diverge from push rows"
            );
            // Seed parallel-ledger contract: the source batches are charged
            // from the leaf device to the (unplaced) workers, nothing else.
            let mut want = MovementLedger::new();
            if let PhysNode::Values { batches, .. } = {
                let mut leaf = &plan.root;
                while let Some(child) = leaf.children().first() {
                    leaf = child;
                }
                leaf
            } {
                for b in batches {
                    want.charge(leaf_device, None, b.byte_size() as u64, b.rows() as u64);
                }
            }
            assert_eq!(ledger_edges(&parallel.ledger), ledger_edges(&want));
            assert_eq!(parallel.ledger.local_bytes(), want.local_bytes());
        },
    );
}

#[test]
fn graph_push_matches_seed_semantics_with_storage_scans() {
    let topo = Topology::disaggregated(&DisaggregatedConfig::default());
    let ssd = topo.expect_device("storage.ssd");
    let cpu = topo.expect_device("compute0.cpu");

    let tables = TableStore::new(MemObjectStore::shared());
    let rows: Vec<i64> = (0..1_000).collect();
    let groups: Vec<i64> = (0..1_000).map(|i| i % 7).collect();
    tables
        .create_and_load(
            "t",
            &[batch_of(vec![
                ("id", Column::from_i64(rows)),
                ("g", Column::from_i64(groups)),
            ])],
        )
        .expect("load");
    let storage = SmartStorage::new(tables);

    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("g", DataType::Int64),
    ])
    .into_ref();
    let scan = PhysNode::StorageScan {
        table: "t".into(),
        request: ScanRequest::full().filter(StoragePredicate::cmp("id", CmpOp::Lt, 400i64)),
        schema: schema.clone(),
        device: Some(ssd),
    };
    let agg = PhysNode::Aggregate {
        input: Box::new(scan),
        group_by: vec!["g".into()],
        aggs: vec![AggCall::count_star("n")],
        mode: AggMode::Final,
        final_schema: Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("n", DataType::Int64),
        ])
        .into_ref(),
        device: Some(cpu),
    };
    let plan = PhysicalPlan::new(agg, "scan-prop");

    let env = ExecEnv {
        storage: Some(&storage),
        topology: Some(&topo),
        wire: None,
        tracer: None,
        gate: None,
        codec: CodecPolicy::AsCompiled,
    };
    let got = execute(&plan, &env).expect("graph-driven execution");
    let (batches, ledger, stats) = oracle(&plan, Some(&storage));
    assert_equivalent(&got, &batches, &ledger, &stats);
    assert_eq!(got.scan_stats.len(), 1);
    assert!(
        got.ledger.cross_device_bytes() > 0,
        "ssd→cpu hop must be charged"
    );
}
