//! Frontier-safety properties for streaming execution.
//!
//! Three invariants of the timely-style progress model, each randomized
//! over plans, windows, and punctuation cadences (`rheo::check`; failing
//! seeds are pinned under `proptest-regressions/`):
//!
//! 1. **Monotone frontiers** — the punctuation sequence every pipeline
//!    processes never regresses ([`ExecOutcome::frontiers`]).
//! 2. **No early emission** — a window only drains once the input
//!    frontier passes its end bound, so every recorded close lag is
//!    non-negative and op-level advances below the bound emit nothing.
//! 3. **No retraction** — each (window, group) emits exactly once; a row
//!    arriving after its window closed is a hard error, never a silent
//!    re-open.
//!
//! [`ExecOutcome::frontiers`]: rheo::core::exec::push::ExecOutcome

use std::collections::BTreeSet;

use rheo::check::{check, Gen};
use rheo::core::exec::push::{execute, ExecEnv};
use rheo::core::logical::{AggCall, AggFn};
use rheo::core::ops::{AggMode, Operator};
use rheo::core::streaming::{windowed_stream_plan, StreamSourceSpec, WindowAggOp, WindowSpec};
use rheo::data::batch::batch_of;
use rheo::data::{Column, DataType, Field, Schema};

fn random_spec(gen: &mut Gen) -> StreamSourceSpec {
    StreamSourceSpec {
        seed: gen.u64(),
        rows_per_batch: gen.usize_in(8, 64),
        batches: Some(gen.usize_in(2, 10) as u64),
        sensors: gen.usize_in(1, 6) as u64,
        start_ts: gen.i64_in(-32, 32),
        punct_every: gen.usize_in(1, 5) as u64,
    }
}

fn random_window(gen: &mut Gen) -> WindowSpec {
    let size = gen.i64_in(4, 80);
    if gen.bool() {
        WindowSpec::tumbling(size)
    } else {
        WindowSpec::sliding(size, gen.i64_in(1, size))
    }
}

/// Returns the run outcome plus the number of group-by columns (the
/// merge output is `wstart, group..., aggs...`).
fn run_random_plan(gen: &mut Gen) -> (rheo::core::exec::push::ExecOutcome, usize) {
    let group_by: Vec<String> = if gen.bool() {
        vec!["sensor".into()]
    } else {
        vec![]
    };
    let n_groups = group_by.len();
    let plan = windowed_stream_plan(
        &random_spec(gen),
        random_window(gen),
        group_by,
        vec![
            AggCall::count_star("n"),
            AggCall::new(AggFn::Sum, "value", "total"),
        ],
        gen.usize_in(1, 32),
        None,
        None,
        None,
    )
    .expect("plan");
    let out = execute(&plan, &ExecEnv::in_memory()).expect("streaming run");
    (out, n_groups)
}

#[test]
fn frontiers_are_monotone_per_pipeline() {
    check("streaming-frontier-monotone", 48, |gen| {
        let (out, _) = run_random_plan(gen);
        assert!(
            !out.frontiers.is_empty(),
            "streaming run must observe punctuation"
        );
        for (pid, seq) in &out.frontiers {
            for pair in seq.windows(2) {
                assert!(
                    pair[0] <= pair[1],
                    "pipeline {pid}: frontier regressed {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    });
}

#[test]
fn window_close_lags_are_never_negative() {
    // A negative lag would mean a window drained *before* the frontier
    // passed its end bound — early emission.
    check("streaming-no-early-emission", 48, |gen| {
        let (out, _) = run_random_plan(gen);
        for lag in &out.window_lags {
            assert!(*lag >= 0, "window closed {lag} ticks before its bound");
        }
    });
}

#[test]
fn each_window_group_emits_exactly_once() {
    // No retraction: merge output carries one final row per
    // (wstart, group key); a duplicate would mean a closed window
    // re-opened and re-emitted.
    check("streaming-no-retraction", 48, |gen| {
        let (out, n_groups) = run_random_plan(gen);
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for b in &out.batches {
            for r in 0..b.rows() {
                let row = b.row(r);
                // Key = wstart plus every group column; the aggregates
                // are excluded so re-emission with different values is
                // still caught.
                let key = format!("{:?}", &row[..=n_groups]);
                assert!(seen.insert(key), "window/group drained twice: {row:?}");
            }
        }
    });
}

// ------------------------------------------------------- op-level safety

fn telemetry_batch(ts: Vec<i64>) -> rheo::data::Batch {
    let n = ts.len();
    batch_of(vec![
        ("ts", Column::from_i64(ts)),
        ("sensor", Column::from_i64(vec![0; n])),
        ("value", Column::from_f64(vec![1.0; n])),
        ("level", Column::from_strs(&vec!["info"; n])),
    ])
}

#[test]
fn advance_below_bound_emits_nothing_and_late_rows_error() {
    check("streaming-op-frontier-safety", 64, |gen| {
        let size = gen.i64_in(4, 40);
        let window = if gen.bool() {
            WindowSpec::tumbling(size)
        } else {
            WindowSpec::sliding(size, gen.i64_in(1, size))
        };
        let final_schema = Schema::new(vec![Field::nullable("n", DataType::Int64)]).into_ref();
        let mut op = WindowAggOp::new(
            "ts",
            window,
            vec![],
            vec![AggCall::count_star("n")],
            AggMode::Final,
            &StreamSourceSpec::schema(),
            final_schema,
        )
        .expect("op");

        // Random ascending stream, interleaving pushes with advances.
        let mut ts = gen.i64_in(-50, 50);
        let mut frontier = i64::MIN;
        let mut emitted_wends: Vec<i64> = Vec::new();
        for _ in 0..gen.usize_in(3, 10) {
            let rows: Vec<i64> = (0..gen.usize_in(1, 12))
                .map(|_| {
                    let t = ts;
                    ts += gen.i64_in(0, 6);
                    t
                })
                .collect();
            op.push(telemetry_batch(rows)).expect("ascending push");
            if gen.bool() {
                // The source frontier: one past everything emitted.
                frontier = ts;
                for (wend, batch) in op.advance(frontier).expect("advance") {
                    assert!(
                        wend <= frontier,
                        "window [.., {wend}) closed early at frontier {frontier}"
                    );
                    assert!(!batch.is_empty());
                    emitted_wends.push(wend);
                }
            }
        }
        // Closed windows drain in ascending end order.
        let mut sorted = emitted_wends.clone();
        sorted.sort_unstable();
        assert_eq!(emitted_wends, sorted, "windows must close ascending");

        // Frontier regression is rejected.
        if frontier > i64::MIN {
            assert!(op.advance(frontier - 1).is_err(), "regression accepted");
        }

        // A row inside an already-closed window is a retraction attempt:
        // hard error, not a re-open.
        if let Some(&wend) = emitted_wends.last() {
            let late = op.push(telemetry_batch(vec![wend - 1]));
            assert!(late.is_err(), "late row for closed window was accepted");
        }
    });
}
