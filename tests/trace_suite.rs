//! The tracing test suite: golden-trace determinism, Chrome trace_event
//! structural soundness, and a property test over arbitrary span nesting.

use rheo::bench::experiments::{e10_full_pipeline, Scale};
use rheo::check::{check, Gen};
use rheo::sim::{LaneKind, SimTime, SpanGuard, Tracer};

const SCALE: Scale = Scale {
    rows: 4_000,
    seed: 42,
};

/// Golden trace: E10 replayed twice with the same seed produces
/// byte-identical simulated-time timelines (the determinism contract from
/// DESIGN.md §4). Wall-clock lanes are excluded by `sim_timeline`.
#[test]
fn golden_trace_e10_is_deterministic() {
    let a = e10_full_pipeline::trace_flow(SCALE);
    let b = e10_full_pipeline::trace_flow(SCALE);
    a.validate().expect("first trace well-formed");
    b.validate().expect("second trace well-formed");
    let ta = a.sim_timeline();
    let tb = b.sim_timeline();
    assert!(!ta.is_empty(), "trace recorded nothing");
    assert_eq!(ta, tb, "sim-time trace is not deterministic");

    // The full pipeline exercises every stage of the data path: storage,
    // NIC, the fabric links between them, and the compute node.
    for lane in [
        "storage.ssd",
        "compute0.nic",
        "compute0.cpu",
        "link.storage.ssd-storage.nic.",
    ] {
        assert!(
            ta.lines().any(|l| l.starts_with(lane)),
            "no events on lane {lane}"
        );
    }
}

/// A minimal reader for the known shape of our own Chrome trace_event
/// output: one JSON object per line, fields in a fixed order.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

fn ts_nanos(raw: &str) -> u64 {
    // "123.456" microseconds -> nanoseconds.
    let (us, frac) = raw.split_once('.').expect("fractional ts");
    us.parse::<u64>().unwrap() * 1_000 + frac.parse::<u64>().unwrap()
}

/// Structural soundness of the Chrome export: every `B` has a matching `E`
/// on its lane, spans never partially overlap (stack discipline), and
/// timestamps are monotone per lane.
#[test]
fn chrome_trace_json_is_structurally_sound() {
    let tracer = e10_full_pipeline::trace_flow(SCALE);
    let json = tracer.chrome_trace_json();
    assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));

    use std::collections::HashMap;
    let mut stacks: HashMap<(u32, u32), Vec<()>> = HashMap::new();
    let mut last_ts: HashMap<(u32, u32), u64> = HashMap::new();
    let mut events = 0usize;
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let ph = field(line, "ph").expect("ph field");
        if ph == "M" {
            continue;
        }
        let pid: u32 = field(line, "pid").unwrap().parse().unwrap();
        let tid: u32 = field(line, "tid").unwrap().parse().unwrap();
        let ts = ts_nanos(field(line, "ts").expect("ts field"));
        let lane = (pid, tid);
        events += 1;

        let prev = last_ts.entry(lane).or_insert(0);
        assert!(
            ts >= *prev,
            "lane {lane:?}: ts {ts} goes backwards (prev {prev})"
        );
        *prev = ts;

        match ph {
            "B" => {
                assert!(
                    field(line, "name").is_some(),
                    "B event without a name: {line}"
                );
                stacks.entry(lane).or_default().push(());
            }
            "E" => {
                assert!(
                    stacks.entry(lane).or_default().pop().is_some(),
                    "lane {lane:?}: E with no open B"
                );
            }
            "i" => {
                assert_eq!(field(line, "s"), Some("t"), "instant without scope");
            }
            other => panic!("unexpected phase {other:?} in {line}"),
        }
    }
    assert!(events > 0, "no events in the export");
    for (lane, stack) in stacks {
        assert!(
            stack.is_empty(),
            "lane {lane:?}: {} unclosed B",
            stack.len()
        );
    }
}

/// Property: any sequence of open/close/instant operations expressed through
/// the RAII [`SpanGuard`] API yields a properly nested span tree — guards
/// drop in LIFO order by construction, so `validate` must always pass and
/// begin/end events must balance exactly.
#[test]
fn arbitrary_span_guard_nesting_is_well_formed() {
    check("trace-span-guard-nesting", 64, |gen: &mut Gen| {
        let tracer = Tracer::new();
        let lane = tracer.lane("prop.lane", LaneKind::Wall);
        let sim_lane = tracer.lane("prop.sim", LaneKind::Sim);
        let mut open: Vec<SpanGuard> = Vec::new();
        let mut begins = 0u64;
        let mut instants = 0u64;
        let mut clock = 0u64;
        let steps = gen.usize_in(0, 60);
        for _ in 0..steps {
            match gen.usize_in(0, 3) {
                0 => {
                    let mut guard = tracer.span(lane, "op");
                    if gen.bool() {
                        guard.annotate("rows", gen.u64() % 1_000);
                    }
                    open.push(guard);
                    begins += 1;
                }
                1 => {
                    // Close the innermost span, if any (LIFO drop).
                    open.pop();
                }
                2 => {
                    tracer.instant(lane, "tick");
                    instants += 1;
                }
                _ => {
                    // Sim-lane spans with a monotone clock stay valid too.
                    let start = clock;
                    clock += gen.u64() % 50;
                    tracer.span_at(
                        sim_lane,
                        "svc",
                        SimTime(start),
                        SimTime(clock),
                        &[("bytes", gen.u64() % 4_096)],
                    );
                    begins += 1;
                }
            }
        }
        // Close whatever is still open, innermost first (LIFO).
        while open.pop().is_some() {}
        tracer.validate().expect("trace from guards is well-formed");
        // Every begin got an end; instants stand alone.
        assert_eq!(tracer.event_count() as u64, 2 * begins + instants);
    });
}

/// Satellite of the pipeline-graph refactor: the executor's new
/// `fabric-edge` / `credit-wait` spans live on wall-clock lanes only. A
/// flow replay traced alongside a real cross-device execution yields a
/// simulated-time timeline byte-identical to the same replay traced alone
/// — executor spans cannot perturb the sim-lane golden traces.
#[test]
fn fabric_edge_spans_stay_out_of_sim_lanes() {
    use rheo::core::exec::push::{execute, CodecPolicy, ExecEnv};
    use rheo::core::logical::AggCall;
    use rheo::core::ops::AggMode;
    use rheo::core::physical::{PhysNode, PhysicalPlan};
    use rheo::data::batch::batch_of;
    use rheo::data::{Column, DataType, Field, Schema};
    use rheo::fabric::flow::{FlowSim, PipelineSpec, StageSpec};
    use rheo::fabric::topology::{DisaggregatedConfig, Topology};
    use rheo::fabric::OpClass;
    use std::sync::Arc;

    let replay = |with_exec: bool| -> Arc<Tracer> {
        let tracer = Arc::new(Tracer::new());
        let topo = Topology::disaggregated(&DisaggregatedConfig::default());
        let ssd = topo.expect_device("storage.ssd");
        let cpu = topo.expect_device("compute0.cpu");
        if with_exec {
            // A placed plan with a device cut: source on the SSD, final
            // aggregation on the CPU — the handoff is a fabric edge.
            let schema = Schema::new(vec![
                Field::new("g", DataType::Int64),
                Field::new("v", DataType::Int64),
            ])
            .into_ref();
            let values = PhysNode::Values {
                batches: vec![batch_of(vec![
                    ("g", Column::from_i64(vec![0, 1, 0, 1])),
                    ("v", Column::from_i64(vec![10, 20, 30, 40])),
                ])],
                schema,
                device: Some(ssd),
            };
            let agg = PhysNode::Aggregate {
                input: Box::new(values),
                group_by: vec!["g".into()],
                aggs: vec![AggCall::count_star("n")],
                mode: AggMode::Final,
                final_schema: Schema::new(vec![
                    Field::new("g", DataType::Int64),
                    Field::new("n", DataType::Int64),
                ])
                .into_ref(),
                device: Some(cpu),
            };
            let env = ExecEnv {
                storage: None,
                topology: Some(&topo),
                wire: None,
                tracer: Some(tracer.clone()),
                gate: None,
                codec: CodecPolicy::AsCompiled,
            };
            execute(&PhysicalPlan::new(agg, "traced"), &env).expect("traced execution");
        }
        let mut sim = FlowSim::new(topo);
        sim.set_tracer(tracer.clone());
        sim.add_pipeline(PipelineSpec::new(
            "replay",
            vec![
                StageSpec::new(ssd, OpClass::Scan, 1.0),
                StageSpec::new(cpu, OpClass::AggregateFinal, 0.01),
            ],
            1 << 20,
        ));
        sim.run();
        tracer
    };

    let sim_only = replay(false);
    let mixed = replay(true);

    // Wall lanes carry the new executor spans...
    let json = mixed.chrome_trace_json();
    assert!(
        json.contains("fabric-edge"),
        "no fabric-edge span in export"
    );
    // ...but the simulated-time timeline never sees them, and stays
    // byte-identical to a replay with no execution at all.
    let sim_lane = mixed.sim_timeline();
    for needle in ["fabric-edge", "credit-wait", "exec.push"] {
        assert!(!sim_lane.contains(needle), "{needle} leaked into sim lanes");
    }
    assert_eq!(
        sim_only.sim_timeline(),
        sim_lane,
        "executor spans perturbed the sim-lane golden trace"
    );
}

/// Golden multi-query trace: the serving harness replays a three-tenant
/// weighted mix (with a high-priority tenant arriving into a backlog) on
/// the sim clock. The per-tenant lanes must carry the full credit story —
/// `arrive`/`done` instants, `batch` spans, `credit-wait` spans while
/// queries sit without credits, and `preempt` instants when a
/// lower-priority query yields — and the whole timeline must be
/// byte-identical across same-seed runs, per-tenant slices included.
#[test]
fn golden_trace_multi_query_harness() {
    use rheo::serve::harness::{run, TenantLoad, Workload};
    use rheo::serve::tenant::TenantSpec;
    use rheo::sim::SimDuration;

    let workload = || {
        // Long low-priority queries arrive first: the head of the line
        // takes a quantum-2 grant (one batch in flight plus a spare
        // credit), saturating both slots …
        let mut batch_tenant = TenantLoad::new(TenantSpec::new("batch", 2), 2);
        batch_tenant.mean_interarrival = SimDuration::from_secs_f64(1e-6);
        batch_tenant.batches = (20, 30);
        batch_tenant.mean_service = SimDuration::from_secs_f64(300e-6);
        let mut scavenger = TenantLoad::new(TenantSpec::new("scavenger", 1), 2);
        scavenger.mean_interarrival = SimDuration::from_secs_f64(1e-6);
        scavenger.batches = (20, 30);
        scavenger.mean_service = SimDuration::from_secs_f64(300e-6);
        // … while short high-priority queries pile up in the wait queue
        // before the first batch boundary, forcing the holder to yield
        // its spare credit.
        let mut interactive =
            TenantLoad::new(TenantSpec::new("interactive", 1).with_priority(2), 8);
        interactive.mean_interarrival = SimDuration::from_secs_f64(100e-6);
        interactive.batches = (1, 3);
        interactive.mean_service = SimDuration::from_secs_f64(100e-6);
        Workload {
            tenants: vec![interactive, batch_tenant, scavenger],
            seed: 7,
            slots: 2,
            quantum: 2,
        }
    };

    let a = run(&workload());
    let b = run(&workload());
    assert_eq!(a.decisions, b.decisions, "scheduler decisions diverged");
    assert_eq!(a.timeline, b.timeline, "sim timeline diverged");

    // Every tenant has a lane, and lanes slice cleanly out of the whole.
    for tenant in ["interactive", "batch", "scavenger"] {
        let lane = format!("tenant.{tenant}");
        assert!(
            a.timeline.lines().any(|l| l.starts_with(&lane)),
            "no events on lane {lane}"
        );
    }

    // The credit story is visible: waits under contention, preemption
    // yields when the high-priority tenant arrives into the backlog.
    assert!(
        a.timeline.contains("credit-wait"),
        "no credit-wait span in a saturated mix:\n{}",
        a.timeline
    );
    assert!(
        a.timeline.contains("preempt"),
        "no preemption instant despite a priority-2 tenant:\n{}",
        a.timeline
    );
    assert!(
        a.decisions.contains("yield"),
        "no yield decision despite quantum 2 under preemption:\n{}",
        a.decisions
    );
    // Preemption yields belong to the low-priority tenants only.
    for line in a.timeline.lines() {
        if line.contains("preempt") {
            assert!(
                !line.starts_with("tenant.interactive"),
                "the high-priority tenant must never be preempted: {line}"
            );
        }
    }
}

/// The summary exporter agrees with the timeline on which lanes did work.
#[test]
fn summary_lists_every_lane_once() {
    let tracer = e10_full_pipeline::trace_flow(SCALE);
    let summary = tracer.summary();
    // First token of each data row is the lane name.
    let rows: Vec<&str> = summary
        .lines()
        .skip(1)
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for name in tracer.lane_names() {
        assert_eq!(
            rows.iter().filter(|r| **r == name).count(),
            1,
            "lane {name} missing or duplicated in summary"
        );
    }
}
