//! Cross-crate integration tests: SQL queries through the full stack, with
//! every plan variant, both executors, and the parallel driver agreeing.

use rheo::bench::workload;
use rheo::core::exec::push::{execute, CodecPolicy, ExecEnv};
use rheo::core::exec::volcano;
use rheo::core::session::Session;
use rheo::data::Scalar;

fn session(rows: usize) -> Session {
    let s = Session::in_memory().expect("session");
    s.create_table("lineitem", &[workload::lineitem(rows, 42)])
        .expect("load lineitem");
    s.create_table("orders", &[workload::orders(rows / 4, 42)])
        .expect("load orders");
    s
}

/// A battery of queries exercising every operator the SQL layer supports.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) AS n FROM lineitem",
    "SELECT l_orderkey, l_price FROM lineitem WHERE l_quantity < 3 LIMIT 50",
    "SELECT l_region, COUNT(*) AS n, SUM(l_quantity) AS q, MIN(l_price) AS lo, \
     MAX(l_price) AS hi, AVG(l_discount) AS d FROM lineitem GROUP BY l_region",
    "SELECT l_region, COUNT(*) AS n FROM lineitem \
     WHERE l_shipdate BETWEEN 10 AND 60 AND l_comment LIKE '%urgent%' \
     GROUP BY l_region",
    "SELECT o_priority, COUNT(*) AS n FROM orders \
     JOIN lineitem ON o_orderkey = l_orderkey \
     WHERE l_quantity > 40 GROUP BY o_priority ORDER BY o_priority",
    "SELECT l_orderkey FROM lineitem WHERE l_quantity * 2 > 95 \
     ORDER BY l_orderkey DESC LIMIT 10",
    "SELECT l_orderkey, l_price FROM lineitem \
     WHERE l_region = 'europe' OR l_region = 'asia' LIMIT 25",
    "SELECT o_orderkey, l_quantity FROM orders \
     LEFT JOIN lineitem ON o_orderkey = l_orderkey \
     WHERE o_priority = 4 ORDER BY o_orderkey LIMIT 40",
];

#[test]
fn every_variant_agrees_on_every_query() {
    let s = session(8_000);
    for query in QUERIES {
        let logical = s
            .logical_plan(query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        let variants = s.variants(&logical).expect("variants");
        let reference = s
            .execute_plan(&variants[0].plan)
            .unwrap_or_else(|e| panic!("{query} [{}]: {e}", variants[0].plan.variant));
        for v in &variants[1..] {
            let got = s
                .execute_plan(&v.plan)
                .unwrap_or_else(|e| panic!("{query} [{}]: {e}", v.plan.variant));
            assert_eq!(
                reference.batch.canonical_rows(),
                got.batch.canonical_rows(),
                "{query}: variant {} != {}",
                v.plan.variant,
                variants[0].plan.variant
            );
        }
    }
}

#[test]
fn volcano_agrees_with_push_on_storage_plans() {
    let s = session(4_000);
    // Limit to queries Volcano supports directly (final aggregation only).
    for query in QUERIES {
        let logical = s.logical_plan(query).unwrap();
        let variants = s.variants(&logical).unwrap();
        let cpu_only = variants
            .iter()
            .find(|v| v.plan.variant == "cpu-only")
            .expect("cpu-only exists");
        let push = execute(
            &cpu_only.plan,
            &ExecEnv {
                storage: Some(s.storage()),
                topology: Some(s.topology()),
                wire: None,
                tracer: None,
                gate: None,
                codec: CodecPolicy::AsCompiled,
            },
        )
        .expect("push runs");
        let volcano = volcano::execute(&cpu_only.plan, Some(s.storage())).expect("volcano runs");
        let push_batch = if push.batches.is_empty() {
            rheo::data::Batch::empty(cpu_only.plan.schema())
        } else {
            push.collect().unwrap()
        };
        assert_eq!(
            push_batch.canonical_rows(),
            volcano.canonical_rows(),
            "executors disagree on {query}"
        );
    }
}

/// Compare row sets allowing tiny float drift (parallel partial sums are
/// not bit-associative).
fn assert_rows_approx_eq(a: &[Vec<Scalar>], b: &[Vec<Scalar>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "{context}: arity differs");
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Scalar::Float(x), Scalar::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() / scale < 1e-9,
                        "{context}: floats differ: {x} vs {y}"
                    );
                }
                _ => assert_eq!(va, vb, "{context}: values differ"),
            }
        }
    }
}

#[test]
fn parallel_sessions_agree_with_sequential() {
    let seq = session(12_000);
    let mut par = session(12_000);
    par.parallelism = 4;
    for query in QUERIES {
        let a = seq.sql(query).unwrap();
        let b = par.sql(query).unwrap();
        assert_rows_approx_eq(&a.batch.canonical_rows(), &b.batch.canonical_rows(), query);
    }
}

#[test]
fn golden_results_fixed_seed() {
    // Pin exact values so a behavioural regression anywhere in the stack
    // (generator, codecs, storage, engine) trips this test.
    let s = session(10_000);
    let r = s
        .sql("SELECT COUNT(*) AS n, SUM(l_quantity) AS q FROM lineitem")
        .unwrap();
    assert_eq!(r.batch.row(0)[0], Scalar::Int(10_000));
    let q = r.batch.row(0)[1].as_int().unwrap();
    // Quantities are 1..=50 uniform: mean ~25.5.
    assert!(
        (q - 255_000).unsigned_abs() < 10_000,
        "sum of quantities drifted: {q}"
    );

    let filtered = s
        .sql("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity = 7")
        .unwrap();
    let n = filtered.batch.row(0)[0].as_int().unwrap();
    assert!((100..350).contains(&n), "selectivity drifted: {n}");

    // Determinism: running the same query twice gives identical bytes.
    let again = s
        .sql("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity = 7")
        .unwrap();
    assert_eq!(
        filtered.batch.canonical_rows(),
        again.batch.canonical_rows()
    );
}

#[test]
fn pushdown_reduces_measured_movement() {
    let s = session(20_000);
    let query = "SELECT l_orderkey FROM lineitem WHERE l_orderkey < 100";
    let logical = s.logical_plan(query).unwrap();
    let variants = s.variants(&logical).unwrap();
    let cpu_only = variants
        .iter()
        .find(|v| v.plan.variant == "cpu-only")
        .unwrap();
    let pushdown = variants
        .iter()
        .find(|v| v.plan.variant == "storage-pushdown")
        .unwrap();
    let a = s.execute_plan(&cpu_only.plan).unwrap();
    let b = s.execute_plan(&pushdown.plan).unwrap();
    assert!(
        b.ledger.cross_device_bytes() * 10 < a.ledger.cross_device_bytes(),
        "pushdown moved {} vs cpu-only {}",
        b.ledger.cross_device_bytes(),
        a.ledger.cross_device_bytes()
    );
    // Zone maps pruned pages on the clustered key.
    assert!(b.scan_stats[0].pages_pruned > 0);
}

#[test]
fn scheduler_and_optimizer_integrate() {
    use rheo::core::scheduler::Scheduler;
    use std::sync::Arc;
    let s = session(5_000);
    let logical = s
        .logical_plan("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10")
        .unwrap();
    let variants = s.variants(&logical).unwrap();
    let mut scheduler = Scheduler::new(Arc::clone(s.topology()), s.optimizer().site().cpu);
    let first = scheduler.admit(&variants).unwrap();
    let second = scheduler.admit(&variants).unwrap();
    // Both admissions are executable plans.
    for admission in [&first, &second] {
        let plan = &variants[admission.variant_index].plan;
        let result = s.execute_plan(plan).unwrap();
        assert_eq!(result.batch.rows(), 1);
    }
    scheduler.release(first.handle);
    scheduler.release(second.handle);
}

#[test]
fn wire_format_survives_the_network_between_sessions() {
    // Storage results encoded, shipped through the transport, and decoded
    // elsewhere stay intact (cross-crate: storage -> codec -> net -> data).
    use rheo::codec::wire::WireOptions;
    use rheo::net::transport::Network;
    use rheo::storage::smart::ScanRequest;

    let s = session(3_000);
    let (batches, _) = s
        .storage()
        .scan(
            "lineitem",
            &ScanRequest::full().project(&["l_orderkey", "l_region"]),
        )
        .unwrap();
    let net = Network::new(2);
    for b in &batches {
        net.send_batch(0, 1, b, &WireOptions::compressed()).unwrap();
    }
    net.send_eos(0, 1).unwrap();
    let received = rheo::net::collective::gather(&net, 1, 1).unwrap();
    let sent = rheo::data::Batch::concat(&batches).unwrap();
    let got = rheo::data::Batch::concat(&received).unwrap();
    assert_eq!(sent.canonical_rows(), got.canonical_rows());
}
