//! Equivalence properties for the reduced model checker.
//!
//! The partial-order-reduced search (`ChannelSystem::check_reduced`) must
//! agree with the exhaustive oracle (`ChannelSystem::check`) on randomized
//! small systems:
//!
//! - **deadlock-freedom is equivalent** — the reduction may prune
//!   interleavings, but never one that hides (or invents) a reachable
//!   all-blocked state;
//! - **reported deadlock schedules are real** — every schedule either
//!   checker returns replays step-by-step under the executable semantics
//!   to a state that is genuinely stuck.
//!
//! Systems are kept small (≤ 4 threads, ≤ 3 channels, scripts ≤ 6 ops,
//! capacities ≤ 2 — including capacity 0, which blocks sends forever) so
//! the exhaustive oracle stays tractable; failing seeds are recorded in
//! `proptest-regressions/model-dpor-equivalence.txt` and replay first.

use df_check::model::{Budget, ChanOp, ChannelSystem, Verdict};
use rheo::check::{check, Gen};

fn random_system(gen: &mut Gen) -> ChannelSystem {
    let channels = gen.usize_in(1, 3);
    let capacities = gen.vec_of(channels, |g| g.usize_in(0, 2));
    let threads = gen.usize_in(2, 4);
    let scripts = gen.vec_of(threads, |g| {
        let len = g.usize_in(0, 6);
        g.vec_of(len, |g| {
            let c = g.usize_in(0, channels - 1);
            if g.bool() {
                ChanOp::Send(c)
            } else {
                ChanOp::Recv(c)
            }
        })
    });
    ChannelSystem {
        capacities,
        scripts,
    }
}

#[test]
fn dpor_verdict_matches_exhaustive_enumeration() {
    check("model-dpor-equivalence", 200, |gen| {
        let sys = random_system(gen);
        let full = sys.check();
        let (reduced, stats) = sys.check_reduced(&Budget::default());
        match (&full, &reduced) {
            (Verdict::DeadlockFree { states }, Verdict::DeadlockFree { states: red }) => {
                assert!(
                    red <= states,
                    "reduction explored more states ({red}) than \
                     exhaustive ({states}): {sys:?}"
                );
            }
            (Verdict::Deadlock { schedule, .. }, Verdict::Deadlock { schedule: red, .. }) => {
                let f = sys.replay(schedule).expect("exhaustive schedule replays");
                assert!(f.stuck, "exhaustive schedule not stuck: {sys:?}");
                let r = sys.replay(red).expect("reduced schedule replays");
                assert!(r.stuck, "reduced schedule not stuck: {sys:?}");
            }
            other => panic!("verdicts disagree: {other:?} for {sys:?}"),
        }
        // Stats sanity: every expanded state explored at least one of its
        // enabled transitions (or was a leaf).
        assert!(stats.explored_total <= stats.enabled_total);
    });
}

#[test]
fn dpor_budget_never_misreports_a_verdict() {
    // Under an artificially tiny budget the reduced checker must either
    // finish with the oracle's verdict or say BudgetExceeded — it must
    // never claim deadlock-freedom it did not prove.
    check("model-dpor-budget", 60, |gen| {
        let sys = random_system(gen);
        let tiny = Budget {
            max_states: gen.usize_in(1, 8),
            max_millis: None,
        };
        let (verdict, _) = sys.check_reduced(&tiny);
        match verdict {
            Verdict::BudgetExceeded { states } => {
                assert!(states <= tiny.max_states);
            }
            Verdict::Deadlock { schedule, .. } => {
                let r = sys.replay(&schedule).expect("schedule replays");
                assert!(r.stuck, "budgeted deadlock schedule not stuck: {sys:?}");
            }
            Verdict::DeadlockFree { .. } => {
                assert!(
                    matches!(sys.check(), Verdict::DeadlockFree { .. }),
                    "budgeted run claimed deadlock-freedom the oracle \
                     refutes: {sys:?}"
                );
            }
        }
    });
}
